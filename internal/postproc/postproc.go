// Package postproc implements the data-mining side of the paper's toolchain
// (§IV): it reads the binary counter dumps written at each node, validates
// them (record counts, record lengths, value ranges), computes per-counter
// statistics (minimum, maximum, arithmetic mean) across nodes, derives the
// metrics the paper reports — MFLOPS, L3–DDR traffic and bandwidth, the
// dynamic FP instruction mix, SIMD share — and emits .csv files usable with
// any spreadsheet.
//
// Counters are aggregated by event mnemonic, not by raw counter index:
// because the interface library programs different counter modes on even
// and odd node cards, a given event is typically observed on half the
// nodes, and machine-wide totals are estimated by scaling the observed mean
// to the full node count (the paper's aggregation strategy).
package postproc

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bgpsim/internal/bgpctr"
	"bgpsim/internal/upc"
)

// maxPlausibleCount flags corrupt counter values during validation: no
// event source can plausibly exceed 2^56 in a real run.
const maxPlausibleCount = uint64(1) << 56

// Stats summarizes one event's values across the nodes that monitored it.
type Stats struct {
	// Min, Max and Mean are the per-node value statistics.
	Min, Max uint64
	Mean     float64
	// Nodes is the number of nodes that monitored the event.
	Nodes int
	// Sum is the total over monitoring nodes.
	Sum uint64
}

// SetAnalysis aggregates one instrumented region (set) across all nodes.
type SetAnalysis struct {
	// ID is the set number.
	ID int
	// Events maps event mnemonics to their cross-node statistics.
	Events map[string]Stats
	// MaxCycles is the largest per-core cycle count observed in the set
	// — the region's execution time in cycles.
	MaxCycles uint64
}

// Analysis is the mined result of one run's dumps.
type Analysis struct {
	// TotalNodes is the number of dump files (nodes) mined.
	TotalNodes int
	// ClockHz is the node clock (validated identical across dumps).
	ClockHz uint64
	// Sets are the instrumented regions by id.
	Sets map[int]*SetAnalysis
}

// Event returns the named event's stats in a set, or a zero Stats.
func (a *Analysis) Event(set int, name string) Stats {
	if sa := a.Sets[set]; sa != nil {
		return sa.Events[name]
	}
	return Stats{}
}

// EstimatedTotal estimates the machine-wide total of an event from the
// nodes that monitored it: mean × total nodes. Events monitored everywhere
// (both counter modes) return their exact sum.
func (a *Analysis) EstimatedTotal(set int, name string) float64 {
	s := a.Event(set, name)
	if s.Nodes == 0 {
		return 0
	}
	if s.Nodes == a.TotalNodes {
		return float64(s.Sum)
	}
	return s.Mean * float64(a.TotalNodes)
}

// Analyze validates and mines a run's node dumps.
func Analyze(dumps []*bgpctr.Dump) (*Analysis, error) {
	if len(dumps) == 0 {
		return nil, fmt.Errorf("postproc: no dumps to analyze")
	}
	a := &Analysis{
		TotalNodes: len(dumps),
		ClockHz:    dumps[0].ClockHz,
		Sets:       make(map[int]*SetAnalysis),
	}
	seen := make(map[int]bool)
	want := len(dumps[0].Sets)
	for _, d := range dumps {
		if seen[d.NodeID] {
			return nil, fmt.Errorf("postproc: duplicate dump for node %d", d.NodeID)
		}
		seen[d.NodeID] = true
		if d.ClockHz != a.ClockHz {
			return nil, fmt.Errorf("postproc: node %d clock %d differs from %d", d.NodeID, d.ClockHz, a.ClockHz)
		}
		if len(d.Sets) != want {
			return nil, fmt.Errorf("postproc: node %d has %d sets, node %d has %d",
				d.NodeID, len(d.Sets), dumps[0].NodeID, want)
		}
		for _, set := range d.Sets {
			if err := a.fold(d, &set); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

func (a *Analysis) fold(d *bgpctr.Dump, set *bgpctr.DumpSet) error {
	sa := a.Sets[set.ID]
	if sa == nil {
		sa = &SetAnalysis{ID: set.ID, Events: make(map[string]Stats)}
		a.Sets[set.ID] = sa
	}
	if set.LastCycle < set.FirstCycle {
		return fmt.Errorf("postproc: node %d set %d: negative duration", d.NodeID, set.ID)
	}
	for i, v := range set.Counts {
		name := upc.EventName(upc.MakeEventID(d.Mode, i))
		if name == "BGP_RESERVED" {
			if v != 0 {
				return fmt.Errorf("postproc: node %d set %d: reserved counter %d nonzero", d.NodeID, set.ID, i)
			}
			continue
		}
		if v > maxPlausibleCount {
			return fmt.Errorf("postproc: node %d set %d: counter %s = %d out of range",
				d.NodeID, set.ID, name, v)
		}
		s, known := sa.Events[name]
		if !known {
			s = Stats{Min: v, Max: v}
		} else {
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
		s.Sum += v
		s.Nodes++
		s.Mean = float64(s.Sum) / float64(s.Nodes)
		sa.Events[name] = s
		if strings.HasSuffix(name, "_CYCLES") && v > sa.MaxCycles {
			sa.MaxCycles = v
		}
	}
	return nil
}

// LoadDir reads every *.bgpc dump in a directory.
func LoadDir(dir string) ([]*bgpctr.Dump, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.bgpc"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("postproc: no .bgpc dumps in %s", dir)
	}
	sort.Strings(names)
	dumps := make([]*bgpctr.Dump, 0, len(names))
	for _, name := range names {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		d, err := bgpctr.ReadDump(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("postproc: %s: %w", name, err)
		}
		dumps = append(dumps, d)
	}
	return dumps, nil
}
