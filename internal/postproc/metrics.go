package postproc

import (
	"fmt"
	"sort"
)

// FPClassEvents lists the eight FP instruction-class mnemonics of the
// dynamic profile (Figure 6), in presentation order.
var FPClassEvents = []string{
	"BGP_NODE_FPU_ADD_SUB",
	"BGP_NODE_FPU_MULT",
	"BGP_NODE_FPU_DIV",
	"BGP_NODE_FPU_FMA",
	"BGP_NODE_FPU_SIMD_ADD_SUB",
	"BGP_NODE_FPU_SIMD_MULT",
	"BGP_NODE_FPU_SIMD_DIV",
	"BGP_NODE_FPU_SIMD_FMA",
}

// flopWeights maps the FP class events to flops per instruction.
var flopWeights = map[string]float64{
	"BGP_NODE_FPU_ADD_SUB":      1,
	"BGP_NODE_FPU_MULT":         1,
	"BGP_NODE_FPU_DIV":          1,
	"BGP_NODE_FPU_FMA":          2,
	"BGP_NODE_FPU_SIMD_ADD_SUB": 2,
	"BGP_NODE_FPU_SIMD_MULT":    2,
	"BGP_NODE_FPU_SIMD_DIV":     2,
	"BGP_NODE_FPU_SIMD_FMA":     4,
}

// DDRLineBytes is the L3–DRAM transfer granule.
const DDRLineBytes = 128

// Metrics are the derived, paper-level quantities of one instrumented
// region of one run.
type Metrics struct {
	// Label names the run (benchmark, build, configuration).
	Label string
	// Set is the instrumented region the metrics describe.
	Set int
	// Nodes is the partition size.
	Nodes int

	// ExecCycles is the region's execution time in cycles (the largest
	// per-core cycle count across the machine, the paper's
	// CYCLE_COUNT usage).
	ExecCycles uint64
	// ExecSeconds is ExecCycles over the clock.
	ExecSeconds float64

	// FPMix holds estimated machine-wide dynamic counts per FP class.
	FPMix map[string]float64
	// Flops is the weighted total floating-point operation count.
	Flops float64
	// MFLOPS is the machine-wide achieved rate.
	MFLOPS float64
	// MFLOPSPerChip is MFLOPS divided by the node count (Figure 14's
	// quantity).
	MFLOPSPerChip float64
	// SIMDShare is the SIMD fraction of FP instructions (Figures 7-8).
	SIMDShare float64

	// DDRTrafficBytes is the exact machine-wide L3–DDR traffic
	// (Figures 11-12).
	DDRTrafficBytes uint64
	// DDRBandwidthMBs is the achieved DDR bandwidth in MB/s.
	DDRBandwidthMBs float64

	// L1HitRate and L3MissRate summarize the cache hierarchy.
	L1HitRate  float64
	L3MissRate float64
}

// Compute derives the metrics of one set from a mined analysis.
func Compute(a *Analysis, set int, label string) (*Metrics, error) {
	sa := a.Sets[set]
	if sa == nil {
		known := make([]int, 0, len(a.Sets))
		for id := range a.Sets {
			known = append(known, id)
		}
		sort.Ints(known)
		return nil, fmt.Errorf("postproc: no set %d in analysis (have %v)", set, known)
	}
	m := &Metrics{
		Label:      label,
		Set:        set,
		Nodes:      a.TotalNodes,
		ExecCycles: sa.MaxCycles,
		FPMix:      make(map[string]float64, len(FPClassEvents)),
	}
	if a.ClockHz > 0 {
		m.ExecSeconds = float64(m.ExecCycles) / float64(a.ClockHz)
	}

	var fpInstr, simdInstr float64
	for _, ev := range FPClassEvents {
		count := a.EstimatedTotal(set, ev)
		m.FPMix[ev] = count
		m.Flops += count * flopWeights[ev]
		fpInstr += count
		if isSIMDEvent(ev) {
			simdInstr += count
		}
	}
	if fpInstr > 0 {
		m.SIMDShare = simdInstr / fpInstr
	}
	if m.ExecSeconds > 0 {
		m.MFLOPS = m.Flops / m.ExecSeconds / 1e6
		m.MFLOPSPerChip = m.MFLOPS / float64(m.Nodes)
	}

	// DDR totals appear in both counter modes, so the sums are exact.
	reads := a.Event(set, "BGP_DDR_READ_LINES").Sum
	writes := a.Event(set, "BGP_DDR_WRITE_LINES").Sum
	// Guard against double counting when a node monitored both names in
	// one mode (cannot happen with the standard wiring, but dumps are
	// external input): normalize by the monitoring fraction.
	if n := a.Event(set, "BGP_DDR_READ_LINES").Nodes; n > a.TotalNodes {
		reads = reads * uint64(a.TotalNodes) / uint64(n)
		writes = writes * uint64(a.TotalNodes) / uint64(n)
	}
	m.DDRTrafficBytes = (reads + writes) * DDRLineBytes
	if m.ExecSeconds > 0 {
		m.DDRBandwidthMBs = float64(m.DDRTrafficBytes) / m.ExecSeconds / 1e6
	}

	l1h := a.EstimatedTotal(set, "BGP_NODE_L1D_HIT")
	l1m := a.EstimatedTotal(set, "BGP_NODE_L1D_MISS")
	if l1h+l1m > 0 {
		m.L1HitRate = l1h / (l1h + l1m)
	}
	l3h := a.EstimatedTotal(set, "BGP_L3_HIT")
	l3m := a.EstimatedTotal(set, "BGP_L3_MISS")
	if l3h+l3m > 0 {
		m.L3MissRate = l3m / (l3h + l3m)
	}
	return m, nil
}

func isSIMDEvent(name string) bool {
	switch name {
	case "BGP_NODE_FPU_SIMD_ADD_SUB", "BGP_NODE_FPU_SIMD_MULT",
		"BGP_NODE_FPU_SIMD_DIV", "BGP_NODE_FPU_SIMD_FMA":
		return true
	}
	return false
}
