package postproc

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteMetricsCSV writes one row per Metrics — the per-application record
// format the paper's tools print for spreadsheet work.
func WriteMetricsCSV(w io.Writer, rows []*Metrics) error {
	cw := csv.NewWriter(w)
	header := []string{
		"label", "set", "nodes", "exec_cycles", "exec_seconds",
		"mflops", "mflops_per_chip", "simd_share",
		"ddr_traffic_bytes", "ddr_bandwidth_mbs", "l1_hit_rate", "l3_miss_rate",
	}
	header = append(header, FPClassEvents...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, m := range rows {
		rec := []string{
			m.Label,
			fmt.Sprint(m.Set),
			fmt.Sprint(m.Nodes),
			fmt.Sprint(m.ExecCycles),
			fmt.Sprintf("%.6f", m.ExecSeconds),
			fmt.Sprintf("%.2f", m.MFLOPS),
			fmt.Sprintf("%.2f", m.MFLOPSPerChip),
			fmt.Sprintf("%.4f", m.SIMDShare),
			fmt.Sprint(m.DDRTrafficBytes),
			fmt.Sprintf("%.2f", m.DDRBandwidthMBs),
			fmt.Sprintf("%.4f", m.L1HitRate),
			fmt.Sprintf("%.4f", m.L3MissRate),
		}
		for _, ev := range FPClassEvents {
			rec = append(rec, fmt.Sprintf("%.0f", m.FPMix[ev]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteStatsCSV writes the full per-counter statistics of every set: one
// row per (set, event) with min, max, mean, monitoring-node count and sum.
func WriteStatsCSV(w io.Writer, a *Analysis) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"set", "event", "min", "max", "mean", "nodes", "sum"}); err != nil {
		return err
	}
	setIDs := make([]int, 0, len(a.Sets))
	for id := range a.Sets {
		setIDs = append(setIDs, id)
	}
	sort.Ints(setIDs)
	for _, id := range setIDs {
		sa := a.Sets[id]
		names := make([]string, 0, len(sa.Events))
		for n := range sa.Events {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			s := sa.Events[n]
			rec := []string{
				fmt.Sprint(id), n,
				fmt.Sprint(s.Min), fmt.Sprint(s.Max),
				fmt.Sprintf("%.2f", s.Mean),
				fmt.Sprint(s.Nodes), fmt.Sprint(s.Sum),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
