package postproc

import (
	"testing"

	"bgpsim/internal/bgpctr"
	"bgpsim/internal/compiler"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/nas"
	"bgpsim/internal/upc"
)

// realAnalysis runs an instrumented benchmark and mines it.
func realAnalysis(t *testing.T) *Analysis {
	t.Helper()
	b, err := nas.ByName("mg")
	if err != nil {
		t.Fatal(err)
	}
	app, err := b.Build(nas.Config{Class: nas.ClassS, Ranks: 8,
		Opts: compiler.Options{Level: compiler.O5, Arch440d: true}})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(2, machine.VNM, machine.DefaultParams())
	j, err := mpi.NewJob(m, app.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	dumps, err := bgpctr.Instrument(j, "", app.Body)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(dumps)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCrossCheckRealRunIsClean(t *testing.T) {
	a := realAnalysis(t)
	results := CrossCheck(a)
	if len(results) < 4 {
		t.Fatalf("only %d identities evaluated", len(results))
	}
	for _, r := range Violations(results) {
		t.Errorf("identity %q violated on set %d: %s", r.Name, r.Set, r.Detail)
	}
}

func TestCrossCheckDetectsCorruptedCounts(t *testing.T) {
	d := fakeDump(0, upc.Mode2, map[string]uint64{
		"BGP_NODE_L1D_HIT":  100,
		"BGP_NODE_L1D_MISS": 5,
		"BGP_NODE_LOAD":     50, // 105 L1 accesses vs 50 memory ops: broken
		"BGP_PU0_CYCLES":    1000,
	})
	a, err := Analyze([]*bgpctr.Dump{d})
	if err != nil {
		t.Fatal(err)
	}
	bad := Violations(CrossCheck(a))
	found := false
	for _, r := range bad {
		if r.Name == "l1-accesses-equal-memory-ops" {
			found = true
		}
	}
	if !found {
		t.Errorf("inconsistent L1 accounting not flagged; violations: %v", bad)
	}
}

func TestCrossCheckDetectsSnoopImbalance(t *testing.T) {
	d := fakeDump(0, upc.Mode2, map[string]uint64{
		"BGP_NODE_SNOOP_REQUESTS":    10,
		"BGP_NODE_SNOOP_FILTERED":    9,
		"BGP_NODE_SNOOP_INVALIDATES": 5, // > requests-filtered
		"BGP_PU0_CYCLES":             10,
	})
	a, _ := Analyze([]*bgpctr.Dump{d})
	bad := Violations(CrossCheck(a))
	found := false
	for _, r := range bad {
		if r.Name == "snoop-accounting" {
			found = true
		}
	}
	if !found {
		t.Error("impossible snoop accounting not flagged")
	}
}

func TestCrossCheckDetectsAsymmetricBarriers(t *testing.T) {
	d0 := fakeDump(0, upc.Mode3, map[string]uint64{"BGP_COL_BARRIER": 3, "BGP_PU0_CYCLES": 10})
	d1 := fakeDump(1, upc.Mode3, map[string]uint64{"BGP_COL_BARRIER": 2, "BGP_PU0_CYCLES": 10})
	a, _ := Analyze([]*bgpctr.Dump{d0, d1})
	bad := Violations(CrossCheck(a))
	found := false
	for _, r := range bad {
		if r.Name == "barrier-participation-symmetric" {
			found = true
		}
	}
	if !found {
		t.Error("asymmetric barrier participation not flagged")
	}
}
