package postproc

import (
	"fmt"
	"sort"
)

// Counter cross-checks — the "sanity checks ... to eliminate possible
// errors in the data" of the paper's §IV, taken further: hardware event
// identities that must hold between independently counted events. A
// violation means a corrupt dump, a miswired signal, or an instrumentation
// bug; the checks are tolerant of the even/odd mode split (an identity is
// only evaluated where all of its terms were monitored together).

// CheckResult is one identity's outcome for one set.
type CheckResult struct {
	// Set is the instrumented region checked.
	Set int
	// Name identifies the identity.
	Name string
	// OK reports whether the identity held.
	OK bool
	// Detail explains a violation (or summarizes the checked values).
	Detail string
}

// CrossCheck evaluates the counter identities over every set of the
// analysis and returns one result per (set, identity); identities whose
// terms were not co-monitored anywhere are skipped.
func CrossCheck(a *Analysis) []CheckResult {
	var out []CheckResult
	setIDs := make([]int, 0, len(a.Sets))
	for id := range a.Sets {
		setIDs = append(setIDs, id)
	}
	sort.Ints(setIDs)
	for _, id := range setIDs {
		out = append(out, crossCheckSet(a, id)...)
	}
	return out
}

func crossCheckSet(a *Analysis, set int) []CheckResult {
	var out []CheckResult
	ev := func(name string) (Stats, bool) {
		s := a.Event(set, name)
		return s, s.Nodes > 0
	}
	add := func(name string, ok bool, detail string) {
		out = append(out, CheckResult{Set: set, Name: name, OK: ok, Detail: detail})
	}

	// Identity 1: every memory instruction hits or misses the L1 —
	// L1D_HIT + L1D_MISS == LOAD + STORE + QUADLOAD + QUADSTORE.
	// All six events live in the aggregate mode, so sums are aligned.
	if l1h, ok1 := ev("BGP_NODE_L1D_HIT"); ok1 {
		l1m, _ := ev("BGP_NODE_L1D_MISS")
		var mem uint64
		for _, n := range []string{"BGP_NODE_LOAD", "BGP_NODE_STORE", "BGP_NODE_QUADLOAD", "BGP_NODE_QUADSTORE"} {
			s, _ := ev(n)
			mem += s.Sum
		}
		got := l1h.Sum + l1m.Sum
		add("l1-accesses-equal-memory-ops", got == mem,
			fmt.Sprintf("L1 hit+miss = %d, memory instructions = %d", got, mem))
	}

	// Identity 2: the prefetch buffer is probed exactly once per L1 miss
	// — L2_PF_HIT + L2_MISS == L1D_MISS.
	if l2h, ok := ev("BGP_NODE_L2_PF_HIT"); ok {
		l2m, _ := ev("BGP_NODE_L2_MISS")
		l1m, _ := ev("BGP_NODE_L1D_MISS")
		got := l2h.Sum + l2m.Sum
		add("l2-probes-equal-l1-misses", got == l1m.Sum,
			fmt.Sprintf("L2 hit+miss = %d, L1 misses = %d", got, l1m.Sum))
	}

	// Identity 3: snoops are either filtered or forwarded; forwarded
	// probes can invalidate at most once each —
	// FILTERED ≤ REQUESTS and INVALIDATES ≤ REQUESTS - FILTERED.
	if req, ok := ev("BGP_NODE_SNOOP_REQUESTS"); ok {
		fil, _ := ev("BGP_NODE_SNOOP_FILTERED")
		inv, _ := ev("BGP_NODE_SNOOP_INVALIDATES")
		ok1 := fil.Sum <= req.Sum && inv.Sum <= req.Sum-fil.Sum
		add("snoop-accounting", ok1,
			fmt.Sprintf("requests %d, filtered %d, invalidates %d", req.Sum, fil.Sum, inv.Sum))
	}

	// Identity 4: torus conservation — machine-wide sent equals received
	// (both packets and bytes). Send counters live in Mode0/Mode3,
	// receive in Mode1/Mode3; only the Mode3 nodes see both, so compare
	// means over co-monitoring nodes machine-wide via estimates with a
	// tolerance, or exactly when both were monitored everywhere.
	if sp, ok := ev("BGP_TORUS_SEND_PACKETS"); ok {
		rp, ok2 := ev("BGP_TORUS_RECV_PACKETS")
		if ok2 && sp.Nodes == a.TotalNodes && rp.Nodes == a.TotalNodes {
			add("torus-packet-conservation", sp.Sum == rp.Sum,
				fmt.Sprintf("sent %d, received %d", sp.Sum, rp.Sum))
		}
	}

	// Identity 5: collective symmetry — every node of a partition takes
	// part in every barrier, so per-node min == max.
	if bar, ok := ev("BGP_COL_BARRIER"); ok {
		add("barrier-participation-symmetric", bar.Min == bar.Max,
			fmt.Sprintf("per-node barriers min %d, max %d", bar.Min, bar.Max))
	}

	// Identity 6: cycle sanity — no core's cycle count may exceed the
	// region's bracketing (monotonicity was validated at decode); here:
	// the max per-core cycles is positive whenever any work was counted.
	if sa := a.Sets[set]; sa != nil {
		var any uint64
		for _, s := range sa.Events {
			any += s.Sum
		}
		add("work-implies-cycles", any == 0 || sa.MaxCycles > 0,
			fmt.Sprintf("total events %d, max cycles %d", any, sa.MaxCycles))
	}

	return out
}

// Violations filters cross-check results down to the failures.
func Violations(results []CheckResult) []CheckResult {
	var bad []CheckResult
	for _, r := range results {
		if !r.OK {
			bad = append(bad, r)
		}
	}
	return bad
}
