package postproc

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpsim/internal/bgpctr"
	"bgpsim/internal/node"
	"bgpsim/internal/upc"
)

// fakeDump builds a dump with the named Mode2 events set per node.
func fakeDump(nodeID int, mode upc.Mode, values map[string]uint64) *bgpctr.Dump {
	d := &bgpctr.Dump{
		NodeID:  nodeID,
		Mode:    mode,
		ClockHz: 850_000_000,
		Sets:    []bgpctr.DumpSet{{ID: 0, Pairs: 1, FirstCycle: 0, LastCycle: 1}},
	}
	for name, v := range values {
		idx := upc.EventIndex(mode, name)
		if idx < 0 {
			panic("event not in mode: " + name)
		}
		d.Sets[0].Counts[idx] = v
	}
	return d
}

func TestAnalyzeStats(t *testing.T) {
	dumps := []*bgpctr.Dump{
		fakeDump(0, upc.Mode2, map[string]uint64{"BGP_NODE_FPU_FMA": 100, "BGP_PU0_CYCLES": 1000}),
		fakeDump(2, upc.Mode2, map[string]uint64{"BGP_NODE_FPU_FMA": 300, "BGP_PU0_CYCLES": 900}),
		fakeDump(1, upc.Mode3, map[string]uint64{"BGP_DDR_READ_LINES": 50, "BGP_PU0_CYCLES": 800}),
	}
	a, err := Analyze(dumps)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Event(0, "BGP_NODE_FPU_FMA")
	if s.Min != 100 || s.Max != 300 || s.Mean != 200 || s.Nodes != 2 || s.Sum != 400 {
		t.Errorf("FMA stats = %+v", s)
	}
	// Estimated machine total scales the mean to all 3 nodes.
	if got := a.EstimatedTotal(0, "BGP_NODE_FPU_FMA"); got != 600 {
		t.Errorf("EstimatedTotal = %g, want 600", got)
	}
	if a.Sets[0].MaxCycles != 1000 {
		t.Errorf("MaxCycles = %d", a.Sets[0].MaxCycles)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	good := fakeDump(0, upc.Mode2, nil)
	dup := fakeDump(0, upc.Mode2, nil)
	if _, err := Analyze([]*bgpctr.Dump{good, dup}); err == nil {
		t.Error("duplicate node accepted")
	}

	badClock := fakeDump(1, upc.Mode2, nil)
	badClock.ClockHz = 1
	if _, err := Analyze([]*bgpctr.Dump{good, badClock}); err == nil {
		t.Error("clock mismatch accepted")
	}

	missingSet := fakeDump(1, upc.Mode2, nil)
	missingSet.Sets = nil
	if _, err := Analyze([]*bgpctr.Dump{good, missingSet}); err == nil {
		t.Error("set-count mismatch accepted")
	}

	outOfRange := fakeDump(1, upc.Mode2, map[string]uint64{"BGP_NODE_FPU_FMA": 1 << 60})
	if _, err := Analyze([]*bgpctr.Dump{outOfRange}); err == nil {
		t.Error("implausible counter value accepted")
	}

	reserved := fakeDump(1, upc.Mode2, nil)
	reserved.Sets[0].Counts[200] = 5 // reserved slot
	if _, err := Analyze([]*bgpctr.Dump{reserved}); err == nil {
		t.Error("nonzero reserved counter accepted")
	}

	if _, err := Analyze(nil); err == nil {
		t.Error("empty dump list accepted")
	}

	negDur := fakeDump(1, upc.Mode2, nil)
	negDur.Sets[0].FirstCycle = 10
	negDur.Sets[0].LastCycle = 5
	if _, err := Analyze([]*bgpctr.Dump{negDur}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestComputeMetrics(t *testing.T) {
	clock := uint64(850_000_000)
	dumps := []*bgpctr.Dump{
		fakeDump(0, upc.Mode2, map[string]uint64{
			"BGP_NODE_FPU_FMA":      1_000_000, // 2 Mflop
			"BGP_NODE_FPU_SIMD_FMA": 500_000,   // 2 Mflop
			"BGP_NODE_FPU_ADD_SUB":  100_000,
			"BGP_PU0_CYCLES":        clock, // exactly 1 second
			"BGP_DDR_READ_LINES":    1000,
			"BGP_DDR_WRITE_LINES":   500,
			"BGP_NODE_L1D_HIT":      900,
			"BGP_NODE_L1D_MISS":     100,
		}),
		fakeDump(1, upc.Mode3, map[string]uint64{
			"BGP_DDR_READ_LINES":  1000,
			"BGP_DDR_WRITE_LINES": 500,
			"BGP_PU0_CYCLES":      clock / 2,
		}),
	}
	a, err := Analyze(dumps)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compute(a, 0, "test")
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecSeconds != 1.0 {
		t.Errorf("ExecSeconds = %g", m.ExecSeconds)
	}
	// FP events only on node 0 → totals estimated ×2 nodes.
	wantFlops := 2.0 * (1_000_000*2 + 500_000*4 + 100_000*1)
	if m.Flops != wantFlops {
		t.Errorf("Flops = %g, want %g", m.Flops, wantFlops)
	}
	if m.MFLOPS != wantFlops/1e6 {
		t.Errorf("MFLOPS = %g", m.MFLOPS)
	}
	if m.MFLOPSPerChip != m.MFLOPS/2 {
		t.Errorf("MFLOPSPerChip = %g", m.MFLOPSPerChip)
	}
	// DDR lines are monitored on every node → exact.
	if want := uint64(3000) * DDRLineBytes; m.DDRTrafficBytes != want {
		t.Errorf("DDRTrafficBytes = %d, want %d", m.DDRTrafficBytes, want)
	}
	wantShare := (500_000.0 * 2) / (1_600_000.0 * 2)
	if diff := m.SIMDShare - wantShare; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("SIMDShare = %g, want %g", m.SIMDShare, wantShare)
	}
	if m.L1HitRate != 0.9 {
		t.Errorf("L1HitRate = %g", m.L1HitRate)
	}
}

func TestComputeUnknownSet(t *testing.T) {
	a, _ := Analyze([]*bgpctr.Dump{fakeDump(0, upc.Mode2, nil)})
	if _, err := Compute(a, 9, "x"); err == nil {
		t.Error("unknown set accepted")
	}
}

func TestCSVOutputs(t *testing.T) {
	a, err := Analyze([]*bgpctr.Dump{
		fakeDump(0, upc.Mode2, map[string]uint64{"BGP_NODE_FPU_FMA": 10, "BGP_PU0_CYCLES": 100}),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compute(a, 0, "app1")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteMetricsCSV(&buf, []*Metrics{m}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("metrics CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "app1,0,1,") {
		t.Errorf("metrics row = %q", lines[1])
	}
	if !strings.Contains(lines[0], "BGP_NODE_FPU_SIMD_FMA") {
		t.Error("metrics header missing FP class columns")
	}

	buf.Reset()
	if err := WriteStatsCSV(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BGP_NODE_FPU_FMA,10,10,10.00,1,10") {
		t.Errorf("stats CSV missing row: %s", buf.String())
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	// Write a real dump through the library.
	n := newInstrumentedNode(t)
	s := bgpctr.Initialize(n, 0, upc.Mode2)
	s.Start(0)
	s.Stop(0)
	var buf bytes.Buffer
	if err := s.Finalize(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "node0000.bgpc"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	dumps, err := LoadDir(dir)
	if err != nil || len(dumps) != 1 {
		t.Fatalf("LoadDir: %d dumps, err %v", len(dumps), err)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

func newInstrumentedNode(t *testing.T) *node.Node {
	t.Helper()
	return node.New(0, node.DefaultParams(), nil, nil)
}
