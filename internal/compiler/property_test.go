package compiler

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bgpsim/internal/isa"
)

// randomKernel generates structurally valid kernels for property testing.
type randomKernel struct {
	k *Kernel
}

func (randomKernel) Generate(r *rand.Rand, size int) reflect.Value {
	k := &Kernel{Name: "rk"}
	nArrays := 1 + r.Intn(4)
	for a := 0; a < nArrays; a++ {
		k.Arrays = append(k.Arrays, Array{
			Name:  string(rune('a' + a)),
			Bytes: uint64(1+r.Intn(64)) * 1024,
		})
	}
	nPhases := 1 + r.Intn(3)
	for p := 0; p < nPhases; p++ {
		ph := Phase{Name: string(rune('p' + p))}
		nLoops := 1 + r.Intn(3)
		for l := 0; l < nLoops; l++ {
			loop := LoopNest{
				Name:  "l",
				Trips: int64(r.Intn(5000)),
			}
			nStmts := 1 + r.Intn(3)
			for s := 0; s < nStmts; s++ {
				st := Stmt{
					AddSub:       r.Intn(6),
					Mul:          r.Intn(4),
					Div:          r.Intn(2),
					FMA:          r.Intn(8),
					Int:          r.Intn(3),
					Vectorizable: r.Intn(2) == 0,
				}
				nRefs := r.Intn(4)
				for f := 0; f < nRefs; f++ {
					ref := Ref{
						Array: ArrayID(r.Intn(nArrays)),
						Store: r.Intn(3) == 0,
					}
					switch r.Intn(3) {
					case 0:
						ref.Pat, ref.Stride = isa.Seq, int64(8*(1+r.Intn(4)))
					case 1:
						ref.Pat, ref.Stride = isa.Strided, int64(256*(1+r.Intn(8)))
					default:
						ref.Pat = isa.Random
					}
					st.Refs = append(st.Refs, ref)
				}
				loop.Stmts = append(loop.Stmts, st)
			}
			ph.Loops = append(ph.Loops, loop)
		}
		k.Phases = append(k.Phases, ph)
	}
	return reflect.ValueOf(randomKernel{k})
}

// Property: every build of every valid kernel lowers to a valid program.
func TestPropertyLoweredProgramsValid(t *testing.T) {
	f := func(rk randomKernel) bool {
		for _, ph := range rk.k.Phases {
			for _, opts := range AllOptions() {
				p, err := Compile(rk.k, ph.Name, opts)
				if err != nil {
					return false
				}
				if p.Validate() != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: optimization never changes the semantics — the flop count is
// invariant (within the odd-trip slivers of the SIMD split) across every
// build configuration.
func TestPropertyFlopsInvariant(t *testing.T) {
	f := func(rk randomKernel) bool {
		for _, ph := range rk.k.Phases {
			base, err := Compile(rk.k, ph.Name, Options{Level: O0})
			if err != nil {
				return false
			}
			bm := base.DynamicMix()
			want := bm.Flops()
			for _, opts := range AllOptions() {
				p, err := Compile(rk.k, ph.Name, opts)
				if err != nil {
					return false
				}
				pm := p.DynamicMix()
				got := pm.Flops()
				diff := int64(got) - int64(want)
				if diff < 0 {
					diff = -diff
				}
				// Tolerance: one trip of slack per loop for the
				// vectorized/scalar split rounding.
				var slack uint64
				for _, l := range rk.k.PhaseByName(ph.Name).Loops {
					perTrip := uint64(0)
					for _, s := range l.Stmts {
						perTrip += uint64(s.AddSub + s.Mul + s.Div + 2*s.FMA)
					}
					slack += 2 * perTrip
				}
				if uint64(diff) > slack {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: total dynamic instructions never increase with the
// optimization level (the whole point of optimizing).
func TestPropertyInstructionCountMonotone(t *testing.T) {
	f := func(rk randomKernel) bool {
		for _, ph := range rk.k.Phases {
			var prev uint64
			for i, opts := range []Options{{Level: O0}, {Level: O3}, {Level: O4}, {Level: O5}} {
				p, err := Compile(rk.k, ph.Name, opts)
				if err != nil {
					return false
				}
				pm := p.DynamicMix()
				total := pm.Total()
				if i > 0 && total > prev {
					return false
				}
				prev = total
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: memory traffic in bytes touched per source iteration is
// preserved by quad coalescing (two 8-byte loads become one 16-byte quad).
func TestPropertyAccessBytesPreserved(t *testing.T) {
	f := func(rk randomKernel) bool {
		for _, ph := range rk.k.Phases {
			base, err := Compile(rk.k, ph.Name, Options{Level: O3})
			if err != nil {
				return false
			}
			simd, err := Compile(rk.k, ph.Name, Options{Level: O3, Arch440d: true})
			if err != nil {
				return false
			}
			want := accessBytes(base)
			got := accessBytes(simd)
			diff := int64(got) - int64(want)
			if diff < 0 {
				diff = -diff
			}
			// Slack: the odd-trip sliver per loop.
			if uint64(diff) > want/10+4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func accessBytes(p *isa.Program) uint64 {
	var n uint64
	for _, l := range p.Loops {
		for _, op := range l.Body {
			n += uint64(op.Class.AccessBytes()) * uint64(l.Trips)
		}
	}
	return n
}
