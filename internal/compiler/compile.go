package compiler

import (
	"fmt"
	"strings"

	"bgpsim/internal/isa"
)

// Level is the XL optimization level of a build.
type Level uint8

// Optimization levels, matching §VI of the paper.
const (
	// O0 is the baseline "-O -qstrict" build: common-subexpression
	// elimination and code motion only; FMA chains stay un-fused and no
	// SIMD code is generated.
	O0 Level = iota
	// O3 adds strength reduction, aggressive code motion and 2-way
	// unrolling, and fuses multiply-add chains onto the FMA unit.
	O3
	// O4 adds -qtune/-qcache/-qhot: 4-way unrolling and loop
	// optimizations driven by processor-specific information.
	O4
	// O5 adds inter-procedural analysis, eliminating most remaining
	// address arithmetic and enabling the widest SIMD coverage.
	O5
)

var levelNames = [...]string{O0: "-O -qstrict", O3: "-O3", O4: "-O4", O5: "-O5"}

// String returns the flag spelling of the level.
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Options selects a build configuration.
type Options struct {
	// Level is the optimization level.
	Level Level
	// Arch440d enables the -qarch=440d SIMD pass, which extracts
	// data-parallel statements onto the double-hummer FPU and coalesces
	// their paired loads/stores into quad accesses. It has no effect
	// below -O3, matching how the paper applies it.
	Arch440d bool
}

// String returns the flag spelling of the options ("-O5 -qarch=440d").
func (o Options) String() string {
	s := o.Level.String()
	if o.Arch440d {
		s += " -qarch=440d"
	}
	return s
}

// ParseOptions parses spellings like "O5", "-O3", "O4+440d",
// "-O5 -qarch=440d", "O0". It accepts the forms the command-line tools
// print.
func ParseOptions(s string) (Options, error) {
	var o Options
	t := strings.ToLower(strings.TrimSpace(s))
	t = strings.ReplaceAll(t, "-qarch=440d", "+440d")
	t = strings.ReplaceAll(t, "qarch440d", "440d")
	t = strings.ReplaceAll(t, " ", "")
	if strings.Contains(t, "440d") {
		o.Arch440d = true
		t = strings.ReplaceAll(t, "+440d", "")
		t = strings.ReplaceAll(t, "440d", "")
	}
	t = strings.TrimPrefix(t, "-")
	t = strings.TrimSuffix(t, "-qstrict")
	switch t {
	case "o0", "o", "oqstrict", "":
		o.Level = O0
	case "o3":
		o.Level = O3
	case "o4":
		o.Level = O4
	case "o5":
		o.Level = O5
	default:
		return Options{}, fmt.Errorf("compiler: unknown optimization %q", s)
	}
	return o, nil
}

// AllOptions returns the eight build configurations of the paper's
// compiler study, in presentation order.
func AllOptions() []Options {
	return []Options{
		{O0, false},
		{O3, false}, {O3, true},
		{O4, false}, {O4, true},
		{O5, false}, {O5, true},
		{O0, true}, // flag ignored below -O3; kept to show it is inert
	}
}

// levelTraits are the per-level lowering parameters.
type levelTraits struct {
	fuse      bool    // fuse Mul+Add chains into FMA
	unroll    int64   // unroll factor (loop-control dilution)
	intPerRef float64 // address-arithmetic ops per memory reference
	loopInt   int     // loop-control integer ops per control trip
	vecFrac   float64 // fraction of vectorizable trips SIMD-ized (with -qarch=440d)
	strideOpt bool    // -qhot loop interchange: strided sweeps become line-sequential
}

var traits = [...]levelTraits{
	O0: {fuse: false, unroll: 1, intPerRef: 1.0, loopInt: 1, vecFrac: 0},
	O3: {fuse: true, unroll: 2, intPerRef: 0.75, loopInt: 1, vecFrac: 0.60},
	O4: {fuse: true, unroll: 4, intPerRef: 0.5, loopInt: 1, vecFrac: 0.85, strideOpt: true},
	O5: {fuse: true, unroll: 4, intPerRef: 0.25, loopInt: 1, vecFrac: 0.98, strideOpt: true},
}

// lineBytes is the L3 line size the -qhot interchange normalizes strided
// sweeps to (one line per iteration, which the prefetch engines follow).
const lineBytes = 128

// Compile lowers one phase of the kernel to an executable program under the
// given options. Array i of the kernel becomes region i of every compiled
// phase, so phases of the same kernel share their data footprint when bound
// in order by the same rank.
func Compile(k *Kernel, phase string, opts Options) (*isa.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	ph := k.PhaseByName(phase)
	if ph == nil {
		return nil, fmt.Errorf("compiler: kernel %q has no phase %q", k.Name, phase)
	}
	tr := traits[opts.Level]
	simd := opts.Arch440d && opts.Level >= O3

	p := &isa.Program{
		Name:  k.Name + "." + phase + " " + opts.String(),
		Group: k.Name,
	}
	p.Regions = make([]isa.Region, len(k.Arrays))
	for i, a := range k.Arrays {
		p.Regions[i] = isa.Region{Name: a.Name, Size: a.Bytes}
	}

	for _, l := range ph.Loops {
		lowerLoop(p, &l, tr, simd)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: internal error lowering %q: %v", p.Name, err)
	}
	// Classify every loop now, while the program is still private to this
	// call: execution engines then share the table instead of re-deriving
	// it per rank, and cached programs ship with it prebuilt.
	p.Classify(lineBytes)
	return p, nil
}

// MustCompile is Compile for statically known-good kernels.
func MustCompile(k *Kernel, phase string, opts Options) *isa.Program {
	p, err := Compile(k, phase, opts)
	if err != nil {
		panic(err)
	}
	return p
}

func lowerLoop(p *isa.Program, l *LoopNest, tr levelTraits, simd bool) {
	if l.Trips == 0 || len(l.Stmts) == 0 {
		return
	}
	vectorizable := false
	for _, s := range l.Stmts {
		if s.Vectorizable {
			vectorizable = true
			break
		}
	}

	var vecPairs, scalarTrips int64
	if simd && vectorizable {
		vecTrips := int64(tr.vecFrac * float64(l.Trips))
		vecPairs = vecTrips / 2
		scalarTrips = l.Trips - vecPairs*2
	} else {
		scalarTrips = l.Trips
	}

	if vecPairs > 0 {
		body := buildBody(l.Stmts, tr, true)
		p.Loops = append(p.Loops, isa.Loop{
			Name:  l.Name + ".simd",
			Trips: vecPairs,
			Body:  body,
		})
	}
	if scalarTrips > 0 {
		body := buildBody(l.Stmts, tr, false)
		p.Loops = append(p.Loops, isa.Loop{
			Name:  l.Name + ".scalar",
			Trips: scalarTrips,
			Body:  body,
		})
	}

	// Loop control, diluted by the unroll factor: one branch plus the
	// level's control integers per unrolled trip.
	ctrlTrips := l.Trips / tr.unroll
	if ctrlTrips == 0 {
		ctrlTrips = 1
	}
	ctrl := isa.Loop{Name: l.Name + ".ctrl", Trips: ctrlTrips}
	for i := 0; i < tr.loopInt; i++ {
		ctrl.Body = append(ctrl.Body, isa.Op{Class: isa.IntALU})
	}
	ctrl.Body = append(ctrl.Body, isa.Op{Class: isa.Branch})
	p.Loops = append(p.Loops, ctrl)
}

// buildBody emits one loop body. In vector form a trip represents two
// source iterations: vectorizable statements emit SIMD ops and quad
// accesses, non-vectorizable ones emit doubled scalar ops with interleaved
// address streams.
func buildBody(stmts []Stmt, tr levelTraits, vector bool) []isa.Op {
	var body []isa.Op
	refs := 0

	emitFP := func(class isa.Class, n int) {
		for i := 0; i < n; i++ {
			body = append(body, isa.Op{Class: class})
		}
	}
	emitInt := func(s Stmt, srcIters int) {
		for i := 0; i < s.Int*srcIters; i++ {
			body = append(body, isa.Op{Class: isa.IntALU})
		}
	}
	emitRef := func(ref Ref, quad bool, copies int, interchange bool) {
		var class isa.Class
		switch {
		case quad && ref.Store:
			class = isa.QuadStore
		case quad:
			class = isa.QuadLoad
		case ref.Store:
			class = isa.Store
		default:
			class = isa.Load
		}
		pat, stride := ref.Pat, ref.Stride
		if interchange && tr.strideOpt && pat == isa.Strided && (stride > lineBytes || stride < -lineBytes) {
			// -qhot interchanges the loop nest so the sweep walks
			// memory one line per iteration; the prefetch engines can
			// then follow it. Interchange is legal exactly where
			// vectorization is: the statement carries no loop
			// dependence (the line-solve recurrences of SP/BT keep
			// their column strides).
			pat, stride = isa.Seq, lineBytes
		}
		if vector && (pat == isa.Seq || pat == isa.Strided) {
			stride *= 2 // a trip covers two source iterations
		}
		for c := 0; c < copies; c++ {
			body = append(body, isa.Op{
				Class:  class,
				Pat:    pat,
				Region: isa.RegionID(ref.Array),
				Stride: stride,
				Offset: int64(c) * stride / int64(copies),
			})
			refs++
		}
	}

	for _, s := range stmts {
		switch {
		case vector && s.Vectorizable:
			// Two source iterations fold into one SIMD trip.
			emitFP(isa.FPSIMDFMA, fmaCount(s, tr))
			emitFP(isa.FPSIMDAddSub, addSubCount(s, tr))
			emitFP(isa.FPSIMDMult, mulCount(s, tr))
			emitFP(isa.FPSIMDDiv, s.Div)
			emitInt(s, 2)
			for _, ref := range s.Refs {
				if ref.Pat == isa.Random {
					emitRef(ref, false, 2, true) // gathers cannot coalesce
				} else {
					emitRef(ref, true, 1, true)
				}
			}
		case vector:
			// Non-vectorizable statement inside a vectorized loop:
			// doubled scalar work.
			emitFP(isa.FPFMA, 2*fmaCount(s, tr))
			emitFP(isa.FPAddSub, 2*addSubCount(s, tr))
			emitFP(isa.FPMult, 2*mulCount(s, tr))
			emitFP(isa.FPDiv, 2*s.Div)
			emitInt(s, 2)
			for _, ref := range s.Refs {
				emitRef(ref, false, 2, s.Vectorizable)
			}
		default:
			emitFP(isa.FPFMA, fmaCount(s, tr))
			emitFP(isa.FPAddSub, addSubCount(s, tr))
			emitFP(isa.FPMult, mulCount(s, tr))
			emitFP(isa.FPDiv, s.Div)
			emitInt(s, 1)
			for _, ref := range s.Refs {
				emitRef(ref, false, 1, s.Vectorizable)
			}
		}
	}

	// Address arithmetic scaled by the level's strength-reduction power.
	ints := int(tr.intPerRef*float64(refs) + 0.5)
	for i := 0; i < ints; i++ {
		body = append(body, isa.Op{Class: isa.IntALU})
	}
	return body
}

// fmaCount returns the FMA instructions a statement emits per source
// iteration at this level (0 when fusion is off: the chains un-fuse).
func fmaCount(s Stmt, tr levelTraits) int {
	if tr.fuse {
		return s.FMA
	}
	return 0
}

// addSubCount includes un-fused adds below -O3.
func addSubCount(s Stmt, tr levelTraits) int {
	if tr.fuse {
		return s.AddSub
	}
	return s.AddSub + s.FMA
}

// mulCount includes un-fused multiplies below -O3.
func mulCount(s Stmt, tr levelTraits) int {
	if tr.fuse {
		return s.Mul
	}
	return s.Mul + s.FMA
}
