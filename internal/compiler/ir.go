// Package compiler models the IBM XL compiler's effect on the dynamic
// instruction stream of a kernel. Benchmarks are authored once, in a small
// loop-nest intermediate representation, and lowered to virtual-ISA
// programs under a chosen optimization level — reproducing how -O/-qstrict,
// -O3, -O4 and -O5, with and without -qarch=440d, change the instruction
// mix (FMA fusion, SIMD-ization, quad load/store coalescing, loop overhead
// and address-arithmetic elimination) that the paper measures through the
// FPU counters in §V–VI.
package compiler

import (
	"fmt"

	"bgpsim/internal/isa"
)

// ArrayID names an array of a kernel.
type ArrayID int

// Array is one data array of a kernel. Arrays become the memory regions of
// every lowered program, so their sizes are the kernel's cache footprint.
type Array struct {
	// Name labels the array ("u", "r", "twiddle").
	Name string
	// Bytes is the array extent.
	Bytes uint64
}

// Ref is one memory reference of a statement, executed once per loop trip.
type Ref struct {
	// Array is the referenced array.
	Array ArrayID
	// Pat is the access pattern.
	Pat isa.Pattern
	// Stride is the per-trip advance for Seq/Strided patterns.
	Stride int64
	// Store marks a write.
	Store bool
}

// Stmt is one statement of a loop body, authored in semantic form: FMA
// counts chained multiply-adds (which un-fuse into separate multiplies and
// adds below -O3), and Vectorizable marks data-parallel statements the
// -qarch=440d SIMD pass may pair onto the double-hummer FPU.
type Stmt struct {
	// AddSub, Mul and Div are FP operations that remain separate at
	// every level.
	AddSub, Mul, Div int
	// FMA counts multiply-add chains: one FMA instruction at -O3 and
	// above, one multiply plus one add below.
	FMA int
	// Int is semantic integer work (key comparisons, index computation)
	// that no optimization level can remove; address arithmetic is
	// charged separately by the lowering pass.
	Int int
	// Refs are the memory references of the statement per trip.
	Refs []Ref
	// Vectorizable marks the statement data-parallel.
	Vectorizable bool
}

// LoopNest is a counted loop of statements; Trips is the flattened dynamic
// iteration count.
type LoopNest struct {
	// Name labels the loop.
	Name string
	// Trips is the dynamic trip count.
	Trips int64
	// Stmts is the loop body.
	Stmts []Stmt
}

// Phase is a named compute phase of a kernel — the unit a benchmark
// executes between communication calls.
type Phase struct {
	// Name labels the phase ("resid", "fft-x").
	Name string
	// Loops is the phase body.
	Loops []LoopNest
}

// Kernel is the authored form of a benchmark's compute code.
type Kernel struct {
	// Name is the benchmark name.
	Name string
	// Arrays is the data footprint.
	Arrays []Array
	// Phases are the compute phases, compiled independently.
	Phases []Phase
}

// PhaseByName returns the named phase or nil.
func (k *Kernel) PhaseByName(name string) *Phase {
	for i := range k.Phases {
		if k.Phases[i].Name == name {
			return &k.Phases[i]
		}
	}
	return nil
}

// FootprintBytes returns the total array footprint of the kernel.
func (k *Kernel) FootprintBytes() uint64 {
	var n uint64
	for _, a := range k.Arrays {
		n += a.Bytes
	}
	return n
}

// Validate checks that every reference names a valid array.
func (k *Kernel) Validate() error {
	for _, ph := range k.Phases {
		for _, l := range ph.Loops {
			if l.Trips < 0 {
				return fmt.Errorf("compiler: kernel %q loop %q: negative trips", k.Name, l.Name)
			}
			for si, s := range l.Stmts {
				if s.AddSub < 0 || s.Mul < 0 || s.Div < 0 || s.FMA < 0 {
					return fmt.Errorf("compiler: kernel %q loop %q stmt %d: negative op count", k.Name, l.Name, si)
				}
				for _, ref := range s.Refs {
					if int(ref.Array) < 0 || int(ref.Array) >= len(k.Arrays) {
						return fmt.Errorf("compiler: kernel %q loop %q stmt %d: array %d out of range",
							k.Name, l.Name, si, ref.Array)
					}
					if ref.Pat == isa.None {
						return fmt.Errorf("compiler: kernel %q loop %q stmt %d: reference without pattern",
							k.Name, l.Name, si)
					}
					if (ref.Pat == isa.Seq || ref.Pat == isa.Strided) && ref.Stride == 0 {
						return fmt.Errorf("compiler: kernel %q loop %q stmt %d: zero stride", k.Name, l.Name, si)
					}
				}
			}
		}
	}
	return nil
}
