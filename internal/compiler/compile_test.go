package compiler

import (
	"testing"

	"bgpsim/internal/isa"
)

// testKernel is a vectorizable FMA/add kernel over one 64 KB array.
func testKernel() *Kernel {
	return &Kernel{
		Name:   "tk",
		Arrays: []Array{{Name: "a", Bytes: 64 << 10}, {Name: "b", Bytes: 64 << 10}},
		Phases: []Phase{{
			Name: "main",
			Loops: []LoopNest{{
				Name:  "l0",
				Trips: 10000,
				Stmts: []Stmt{{
					FMA:    2,
					AddSub: 1,
					Refs: []Ref{
						{Array: 0, Pat: isa.Seq, Stride: 8},
						{Array: 1, Pat: isa.Seq, Stride: 8, Store: true},
					},
					Vectorizable: true,
				}},
			}},
		}},
	}
}

func mixFor(t *testing.T, k *Kernel, opts Options) isa.Mix {
	t.Helper()
	p, err := Compile(k, "main", opts)
	if err != nil {
		t.Fatal(err)
	}
	return p.DynamicMix()
}

func TestBaselineUnfusesFMA(t *testing.T) {
	m := mixFor(t, testKernel(), Options{Level: O0})
	if m[isa.FPFMA] != 0 {
		t.Errorf("baseline emitted %d FMA instructions", m[isa.FPFMA])
	}
	// 2 FMA chains per trip un-fuse into 2 muls + 2 adds, plus the
	// authored add: 3 add-subs and 2 muls per trip.
	if m[isa.FPAddSub] != 30000 || m[isa.FPMult] != 20000 {
		t.Errorf("unfused mix: addsub=%d mult=%d, want 30000/20000", m[isa.FPAddSub], m[isa.FPMult])
	}
	if m.SIMDInstructions() != 0 {
		t.Error("baseline emitted SIMD instructions")
	}
}

func TestO3FusesFMA(t *testing.T) {
	m := mixFor(t, testKernel(), Options{Level: O3})
	if m[isa.FPFMA] != 20000 {
		t.Errorf("FMA = %d, want 20000", m[isa.FPFMA])
	}
	if m[isa.FPMult] != 0 {
		t.Errorf("fused build still has %d multiplies", m[isa.FPMult])
	}
}

func TestFlopsPreservedAcrossLevels(t *testing.T) {
	// Optimization must never change the semantics: the flop count is
	// invariant across every build configuration.
	k := testKernel()
	want := mixFor(t, k, Options{Level: O0}).Flops()
	for _, opts := range AllOptions() {
		got := mixFor(t, k, opts).Flops()
		// The SIMD split floors odd trip counts; allow a sliver.
		diff := int64(got) - int64(want)
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.01*float64(want) {
			t.Errorf("%v: flops = %d, want %d", opts, got, want)
		}
	}
}

func TestArch440dEmitsSIMDAndQuads(t *testing.T) {
	m := mixFor(t, testKernel(), Options{Level: O5, Arch440d: true})
	if m.SIMDShare() < 0.9 {
		t.Errorf("O5+440d SIMD share = %.2f, want >0.9", m.SIMDShare())
	}
	if m[isa.QuadLoad] == 0 || m[isa.QuadStore] == 0 {
		t.Errorf("no quad accesses: quadload=%d quadstore=%d", m[isa.QuadLoad], m[isa.QuadStore])
	}
	// Quad accesses halve the access count of vectorized refs.
	scalar := mixFor(t, testKernel(), Options{Level: O5})
	if m[isa.QuadLoad]+m[isa.Load] >= scalar[isa.Load] {
		t.Errorf("load instruction count not reduced: %d+%d vs %d",
			m[isa.QuadLoad], m[isa.Load], scalar[isa.Load])
	}
}

func TestSIMDShareGrowsWithLevel(t *testing.T) {
	prev := -1.0
	for _, lv := range []Level{O3, O4, O5} {
		m := mixFor(t, testKernel(), Options{Level: lv, Arch440d: true})
		share := m.SIMDShare()
		if share <= prev {
			t.Errorf("%v: SIMD share %.3f not above previous %.3f", lv, share, prev)
		}
		prev = share
	}
}

func TestArch440dInertBelowO3(t *testing.T) {
	plain := mixFor(t, testKernel(), Options{Level: O0})
	flagged := mixFor(t, testKernel(), Options{Level: O0, Arch440d: true})
	if plain != flagged {
		t.Error("-qarch=440d changed the baseline build")
	}
}

func TestNonVectorizableKernelNeverSIMD(t *testing.T) {
	k := testKernel()
	k.Phases[0].Loops[0].Stmts[0].Vectorizable = false
	m := mixFor(t, k, Options{Level: O5, Arch440d: true})
	if m.SIMDInstructions() != 0 {
		t.Errorf("non-vectorizable stmt produced %d SIMD instructions", m.SIMDInstructions())
	}
}

func TestRandomRefsNeverCoalesce(t *testing.T) {
	k := testKernel()
	k.Phases[0].Loops[0].Stmts[0].Refs[0].Pat = isa.Random
	k.Phases[0].Loops[0].Stmts[0].Refs[0].Stride = 0
	m := mixFor(t, k, Options{Level: O5, Arch440d: true})
	if m[isa.QuadLoad] != 0 {
		t.Errorf("gather coalesced into %d quad loads", m[isa.QuadLoad])
	}
	if m[isa.Load] == 0 {
		t.Error("gather loads disappeared")
	}
}

func TestLoopOverheadShrinksWithLevel(t *testing.T) {
	branches := func(lv Level) uint64 {
		return mixFor(t, testKernel(), Options{Level: lv})[isa.Branch]
	}
	if !(branches(O0) > branches(O3) && branches(O3) > branches(O4)) {
		t.Errorf("branch counts not decreasing: O0=%d O3=%d O4=%d",
			branches(O0), branches(O3), branches(O4))
	}
}

func TestIntOverheadShrinksWithLevel(t *testing.T) {
	ints := func(lv Level) uint64 {
		return mixFor(t, testKernel(), Options{Level: lv})[isa.IntALU]
	}
	if !(ints(O0) > ints(O3) && ints(O3) > ints(O5)) {
		t.Errorf("int counts not decreasing: O0=%d O3=%d O5=%d", ints(O0), ints(O3), ints(O5))
	}
}

func TestTotalInstructionsShrinkWithOptimization(t *testing.T) {
	k := testKernel()
	base := mixFor(t, k, Options{Level: O0}).Total()
	best := mixFor(t, k, Options{Level: O5, Arch440d: true}).Total()
	if float64(best) > 0.7*float64(base) {
		t.Errorf("O5+440d total %d not well below baseline %d", best, base)
	}
}

func TestCompileUnknownPhase(t *testing.T) {
	if _, err := Compile(testKernel(), "nope", Options{}); err == nil {
		t.Error("unknown phase accepted")
	}
}

func TestCompileInvalidKernel(t *testing.T) {
	k := testKernel()
	k.Phases[0].Loops[0].Stmts[0].Refs[0].Array = 99
	if _, err := Compile(k, "main", Options{}); err == nil {
		t.Error("invalid kernel accepted")
	}
}

func TestValidateCatchesBadIR(t *testing.T) {
	bad := []*Kernel{
		{Name: "neg-trips", Phases: []Phase{{Name: "p", Loops: []LoopNest{{Trips: -1}}}}},
		{Name: "neg-ops", Phases: []Phase{{Name: "p", Loops: []LoopNest{{Trips: 1,
			Stmts: []Stmt{{FMA: -1}}}}}}},
		{Name: "no-pattern", Arrays: []Array{{Name: "a", Bytes: 8}},
			Phases: []Phase{{Name: "p", Loops: []LoopNest{{Trips: 1,
				Stmts: []Stmt{{Refs: []Ref{{Array: 0}}}}}}}}},
		{Name: "zero-stride", Arrays: []Array{{Name: "a", Bytes: 8}},
			Phases: []Phase{{Name: "p", Loops: []LoopNest{{Trips: 1,
				Stmts: []Stmt{{Refs: []Ref{{Array: 0, Pat: isa.Seq}}}}}}}}},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %q: want error", k.Name)
		}
	}
}

func TestParseOptions(t *testing.T) {
	cases := []struct {
		in   string
		want Options
	}{
		{"O0", Options{O0, false}},
		{"-O -qstrict", Options{O0, false}},
		{"O3", Options{O3, false}},
		{"-O5 -qarch=440d", Options{O5, true}},
		{"O4+440d", Options{O4, true}},
		{"o5", Options{O5, false}},
	}
	for _, tc := range cases {
		got, err := ParseOptions(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseOptions(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseOptions("O7"); err == nil {
		t.Error("bad level accepted")
	}
}

func TestOptionsRoundTripThroughString(t *testing.T) {
	for _, opts := range AllOptions() {
		if opts.Level == O0 && opts.Arch440d {
			continue // spelling normalizes the inert flag away
		}
		back, err := ParseOptions(opts.String())
		if err != nil || back != opts {
			t.Errorf("round trip %v → %q → %v (%v)", opts, opts.String(), back, err)
		}
	}
}

func TestKernelFootprint(t *testing.T) {
	if got := testKernel().FootprintBytes(); got != 128<<10 {
		t.Errorf("footprint = %d, want 128KB", got)
	}
}

func TestMustCompilePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile(testKernel(), "nope", Options{})
}

func TestCompiledProgramsShareRegionLayout(t *testing.T) {
	k := testKernel()
	a, _ := Compile(k, "main", Options{Level: O0})
	b, _ := Compile(k, "main", Options{Level: O5, Arch440d: true})
	if len(a.Regions) != len(b.Regions) {
		t.Fatal("region counts differ across builds")
	}
	for i := range a.Regions {
		if a.Regions[i] != b.Regions[i] {
			t.Errorf("region %d differs: %+v vs %+v", i, a.Regions[i], b.Regions[i])
		}
	}
}
